// Package errcodefix is the errcode fixture: a package with a typed Error
// (Code field) whose exported API must not leak bare fmt.Errorf /
// errors.New results, and whose wraps must keep the Code reachable.
package errcodefix

import (
	"errors"
	"fmt"
)

// Code classifies a failure.
type Code uint8

// Error is the typed failure of this package's API, like live.Error.
type Error struct {
	Code Code
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func Exported() error {
	return fmt.Errorf("boom") // want `bare fmt.Errorf`
}

func ExportedNew() ([]byte, error) {
	return nil, errors.New("boom") // want `bare errors.New`
}

func ExportedTyped() error {
	return &Error{Code: 1, Msg: "boom"} // ok: carries a Code
}

func ExportedPassThrough(err error) error {
	return err // ok: not constructing an untyped error
}

func ExportedNilError() (int, error) {
	return 1, nil // ok
}

func unexported() error {
	return fmt.Errorf("internal detail") // ok: below the API surface
}

func Waived() error {
	return errors.New("bind: setup-time failure") //lint:allow errcode setup path, outside the typed-error contract
}

func wrapDroppingCode(e *Error) error {
	return fmt.Errorf("while flushing: %v", e) // want `without %w`
}

func wrapKeepingCode(e *Error) error {
	return fmt.Errorf("while flushing: %w", e) // ok: Code reachable via errors.As
}

func wrapPlainError(err error) error {
	return fmt.Errorf("context: %v", err) // ok: no Code to lose
}
