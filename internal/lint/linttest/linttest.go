// Package linttest runs a lint.Analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools' analysistest (re-implemented on the standard
// library, like the framework itself).
//
// A fixture lives in testdata/src/<name>/ and is a complete, compiling
// package; it is invisible to `go build ./...` (testdata is not a package
// directory) but is parsed and type-checked here with export data from
// the local toolchain, so fixtures may import the standard library.
//
// Expectations: a comment `// want "re1" "re2"` on a line demands that at
// least one reported diagnostic on that line matches each regexp; any
// diagnostic on a line with no matching want fails the test, and any
// unmatched want fails it too. `//lint:allow` waivers are honored exactly
// as the driver honors them, so fixtures can also prove suppression works.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"joinopt/internal/lint"
	"joinopt/internal/lint/lintload"
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package testdata/src/<name> with the given
// analyzers and compares diagnostics against the fixture's want comments.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []string
	var astFiles []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		files = append(files, path)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		astFiles = append(astFiles, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range astFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range splitQuoted(t, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("linttest: bad want regexp at %s: %v", key, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	imports = append(imports, "builtin") // never empty, keeps go list happy
	imp, err := lintload.StdImporter(imports...)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := lintload.CheckFiles(fixture, files, imp)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matched want %q", key, w.re)
			}
		}
	}
}

// splitQuoted extracts the double-quoted (or backquoted) regexp strings of
// a want comment.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("linttest: want comment must hold quoted regexps, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("linttest: unterminated quote in want comment: %q", s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("linttest: bad quoted regexp %q: %v", raw, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
