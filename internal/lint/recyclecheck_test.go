package lint_test

import (
	"testing"

	"joinopt/internal/lint"
	"joinopt/internal/lint/linttest"
)

func TestRecyclecheck(t *testing.T) {
	linttest.Run(t, "recyclefix", lint.Recyclecheck)
}
