// Package core implements the paper's runtime join-location optimizer: the
// skiRentalCaching procedure of Algorithm 1 combined with per-key learned
// costs, frequency tracking, two-tier caching, and the update-invalidation
// rules of Section 4.2.3.
//
// The optimizer is execution-plane agnostic: it decides where each request
// should go and mutates its own cache/counter state, while the caller (the
// discrete-event executor or the live TCP executor) performs the actual
// I/O and calls back with responses.
package core

import (
	"math/rand"

	"joinopt/internal/cache"
	"joinopt/internal/costmodel"
	"joinopt/internal/freq"
	"joinopt/internal/skirental"
)

// Route says where one request should be executed.
type Route int

const (
	// RouteLocalMem: value cached in memory; compute at this node.
	RouteLocalMem Route = iota
	// RouteLocalDisk: value in the disk cache; read it and compute here.
	RouteLocalDisk
	// RouteCompute: ship (k, p) to the data node (compute request).
	RouteCompute
	// RouteDataMem: fetch the value and cache it in memory (buy).
	RouteDataMem
	// RouteDataDisk: fetch the value and cache it on disk (buy).
	RouteDataDisk
	// RouteDataNoCache: fetch the value, compute locally, do not cache
	// (the NO/FC/FR function-at-compute-node strategies).
	RouteDataNoCache
)

// String names the route for logs and metrics.
func (r Route) String() string {
	switch r {
	case RouteLocalMem:
		return "local-mem"
	case RouteLocalDisk:
		return "local-disk"
	case RouteCompute:
		return "compute-req"
	case RouteDataMem:
		return "data-req-mem"
	case RouteDataDisk:
		return "data-req-disk"
	case RouteDataNoCache:
		return "data-req-nocache"
	}
	return "unknown"
}

// Policy selects which of the paper's decision mechanisms are active; the
// experiment strategies (NO, FC, FD, FR, CO, LO, FO) map onto these knobs.
type Policy struct {
	// Caching enables ski-rental-based buying and the two-tier cache
	// (CO and FO).
	Caching bool
	// AlwaysCompute forces every request to the data node (FD and LO;
	// with LO the data node's load balancer sends some work back).
	AlwaysCompute bool
	// AlwaysFetch forces every request to fetch-and-compute-locally
	// without caching (NO and FC).
	AlwaysFetch bool
	// RandomChoice picks uniformly between compute request and
	// fetch-no-cache per tuple (FR).
	RandomChoice bool
}

// Config configures an Optimizer (one per compute node).
type Config struct {
	Policy Policy

	MemCacheBytes  int64
	DiskCacheBytes int64 // 0 = unbounded
	// Epsilon is the lossy-counting error bound; <=0 selects exact
	// counting (small key spaces / tests).
	Epsilon float64
	// Alpha is the cost-model smoothing parameter (Section 3.2).
	Alpha float64
	// Seed drives the FR random choice.
	Seed int64
	// FreezeAfter stops adaptation (benefit updates, new purchases,
	// evictions) after this many routed requests; 0 means never. This is
	// the "non-adaptive" configuration of Figure 9.
	FreezeAfter int

	// OffloadCachedWhenOverloaded implements the extension the paper's
	// footnote 4 leaves as future work: normally a cached key is always
	// computed locally, which under very high skew plus high compute
	// cost saturates the compute nodes while data nodes idle. With this
	// knob, when the local congestion multiplier exceeds the data-node
	// one by OffloadFactor, cache hits are routed as compute requests
	// instead.
	OffloadCachedWhenOverloaded bool
	// OffloadFactor is the local/remote congestion ratio that triggers
	// offloading (default 2).
	OffloadFactor float64
}

// Shard derives the configuration for shard i of n when a caller stripes
// one logical optimizer across n shard-local instances (the live executor's
// parallel Submit path). Because every structure Algorithm 1 maintains is
// per-key — ski-rental counters, lossy-counting frequencies, learned costs,
// cache entries — hash-partitioning keys across n independent optimizers
// preserves its semantics as long as each key always lands on the same
// instance. Only the aggregate resources need dividing:
//
//   - MemCacheBytes and DiskCacheBytes are split so the striped whole uses
//     the configured totals (cache.SplitBudget).
//   - FreezeAfter divides by n (each shard sees ~1/n of the traffic, so
//     the freeze point stays at roughly the same total request count).
//   - Seed is decorrelated so FR's random choices are independent.
//
// Shard(i, 1) returns the config unchanged: a single shard is exactly the
// unsharded optimizer.
func (c Config) Shard(i, n int) Config {
	if n <= 1 {
		return c
	}
	mem := c.MemCacheBytes
	if mem <= 0 {
		mem = DefaultMemCacheBytes // divided rather than multiplied n-fold
	}
	c.MemCacheBytes = cache.SplitBudget(mem, i, n)
	if c.DiskCacheBytes > 0 {
		c.DiskCacheBytes = cache.SplitBudget(c.DiskCacheBytes, i, n)
	}
	if c.FreezeAfter > 0 {
		c.FreezeAfter = (c.FreezeAfter + n - 1) / n
	}
	c.Seed += int64(i) * 1000003
	return c
}

// KeyInfo is what the optimizer has learned about one key from compute
// responses (Section 4.3: the first request is always a compute request and
// the response carries the cost parameters).
type KeyInfo struct {
	ValueSize    int64
	ComputedSize int64
	ComputeCost  float64
	Version      int64 // last row version seen on a response
}

// Counters tallies routing decisions for metrics and tests.
type Counters struct {
	Routed       int64
	LocalMem     int64
	LocalDisk    int64
	ComputeReqs  int64
	DataReqs     int64
	NoCacheReqs  int64
	FirstContact int64 // compute requests forced because costs were unknown
	CounterReset int64 // ski-rental counters reset by observed updates
	Offloaded    int64 // cached keys computed remotely (footnote-4 extension)
}

// Optimizer makes per-request routing decisions for one compute node.
type Optimizer struct {
	cfg     Config
	Cache   *cache.TwoTier
	Model   *costmodel.Model
	counter freq.Counter
	keys    map[string]*KeyInfo
	rng     *rand.Rand
	stats   Counters

	// Intrinsic (queueing-free) UDF costs, tracked alongside the
	// effective costs in Model so that per-key costs can be scaled by the
	// observed congestion: inflation = effective / intrinsic.
	trueDataCost  *costmodel.Smoother
	trueLocalCost *costmodel.Smoother

	maxKeys int
}

// DefaultMemCacheBytes is the mCache capacity used when Config leaves
// MemCacheBytes unset (the paper's 100 MB default).
const DefaultMemCacheBytes int64 = 100 << 20

// New creates an optimizer. The cache is created even for non-caching
// policies (it stays empty) so that metrics are uniform.
func New(cfg Config) *Optimizer {
	if cfg.MemCacheBytes <= 0 {
		cfg.MemCacheBytes = DefaultMemCacheBytes
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = costmodel.DefaultAlpha
	}
	var ctr freq.Counter
	if cfg.Epsilon > 0 {
		ctr = freq.NewLossy(cfg.Epsilon)
	} else {
		ctr = freq.NewExact()
	}
	return &Optimizer{
		cfg:           cfg,
		Cache:         cache.New(cfg.MemCacheBytes, cfg.DiskCacheBytes),
		Model:         costmodel.NewModel(cfg.Alpha),
		counter:       ctr,
		keys:          make(map[string]*KeyInfo),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		trueDataCost:  costmodel.NewSmoother(cfg.Alpha, 1e-3),
		trueLocalCost: costmodel.NewSmoother(cfg.Alpha, 1e-3),
		maxKeys:       1 << 20,
	}
}

// Stats returns a copy of the routing counters.
func (o *Optimizer) Stats() Counters { return o.stats }

// Known returns learned information about a key, or nil.
func (o *Optimizer) Known(key string) *KeyInfo { return o.keys[key] }

// Frequency returns the current access-count estimate for key.
func (o *Optimizer) Frequency(key string) int { return o.counter.Estimate(key) }

func (o *Optimizer) frozen() bool {
	return o.cfg.FreezeAfter > 0 && o.stats.Routed > int64(o.cfg.FreezeAfter)
}

// Route implements Algorithm 1 for one incoming tuple with join key `key`.
// netBw is the effective bandwidth to the data node owning the key
// (Appendix D.4 measurement). The returned route tells the caller what to
// do; cache bookkeeping for local hits has already been done.
func (o *Optimizer) Route(key string, netBw float64) Route {
	o.stats.Routed++
	p := o.Policy()

	// Fixed-location strategies bypass Algorithm 1 entirely.
	switch {
	case p.AlwaysFetch:
		o.stats.NoCacheReqs++
		return RouteDataNoCache
	case p.RandomChoice:
		if o.rng.Intn(2) == 0 {
			o.stats.ComputeReqs++
			return RouteCompute
		}
		o.stats.NoCacheReqs++
		return RouteDataNoCache
	case p.AlwaysCompute:
		o.stats.ComputeReqs++
		return RouteCompute
	}

	frozen := o.frozen()
	info := o.keys[key]
	params := o.paramsFor(info, netBw)

	// Lines 1-2: updateBenefit, updateCounter. The benefit weight is the
	// rent this access would have cost (what caching saves).
	if !frozen {
		o.Cache.UpdateBenefit(key, params.TCompute())
	}
	count := o.counter.Observe(key)

	// Lines 3-9: cache hits.
	if _, tier, ok := o.Cache.Get(key); ok {
		if o.shouldOffloadCached() {
			o.stats.ComputeReqs++
			o.stats.Offloaded++
			return RouteCompute
		}
		if tier == cache.TierMem {
			o.stats.LocalMem++
			return RouteLocalMem
		}
		// Disk hit: consider promotion (line 9).
		if !frozen && info != nil {
			o.Cache.CondCacheInMemory(key, info.ValueSize, nil, true)
		}
		o.stats.LocalDisk++
		return RouteLocalDisk
	}

	// First contact: costs unknown, always send a compute request so the
	// response brings the parameters back (Section 4.3). Only the first
	// access is forced; later accesses whose response is still in flight
	// decide with the model's cross-key averages instead, otherwise a
	// burst of hot-key arrivals would all be force-rented to one node.
	if info == nil && count <= 1 {
		o.stats.FirstContact++
		o.stats.ComputeReqs++
		return RouteCompute
	}

	// Non-adaptive mode never buys after the freeze point.
	if frozen {
		o.stats.ComputeReqs++
		return RouteCompute
	}

	// Lines 10-21: the ski-rental decision.
	costs := skirental.Costs{
		Rent:      params.TCompute(),
		Buy:       params.TFetch(),
		RecurMem:  params.TRecMem(),
		RecurDisk: params.TRecDisk(),
	}
	size := int64(params.SV) // model average until the key's size is known
	if info != nil {
		size = info.ValueSize
	}
	memAdmissible := o.Cache.CondCacheInMemory(key, size, nil, false)
	switch skirental.Decide(costs, count, memAdmissible) {
	case skirental.BuyToMem:
		o.stats.DataReqs++
		return RouteDataMem
	case skirental.BuyToDisk:
		o.stats.DataReqs++
		return RouteDataDisk
	default:
		o.stats.ComputeReqs++
		return RouteCompute
	}
}

// Policy returns the active policy.
func (o *Optimizer) Policy() Policy { return o.cfg.Policy }

// paramsFor builds cost parameters, using per-key specifics when known.
// Per-key intrinsic costs are scaled by the observed congestion at each
// side (effective/intrinsic ratio), so a loaded data node raises the rent
// and a loaded compute node raises the recurring cost.
func (o *Optimizer) paramsFor(info *KeyInfo, netBw float64) costmodel.Params {
	var sv, tcd, tcc float64
	if info != nil {
		sv = float64(info.ValueSize)
		tcd = info.ComputeCost * o.inflation(o.Model.CPUData, o.trueDataCost)
		tcc = info.ComputeCost * o.inflation(o.Model.CPUCompute, o.trueLocalCost)
	}
	return o.Model.Params(netBw, sv, tcd, tcc)
}

// inflation returns the congestion multiplier effective/intrinsic, at least
// 1 (queueing cannot make work cheaper).
func (o *Optimizer) inflation(effective, intrinsic *costmodel.Smoother) float64 {
	if intrinsic.Samples() == 0 || intrinsic.Value() <= 0 {
		return 1
	}
	r := effective.Value() / intrinsic.Value()
	if r < 1 {
		return 1
	}
	return r
}

// ObserveLocalCompute records one locally executed UDF: its wall time in
// the local CPU queue (sojourn) and its intrinsic cost.
func (o *Optimizer) ObserveLocalCompute(sojourn, trueCost float64) {
	o.Model.CPUCompute.Observe(sojourn)
	o.trueLocalCost.Observe(trueCost)
}

// shouldOffloadCached reports whether a cache hit should nevertheless be
// computed at the data node (footnote-4 extension).
func (o *Optimizer) shouldOffloadCached() bool {
	if !o.cfg.OffloadCachedWhenOverloaded {
		return false
	}
	factor := o.cfg.OffloadFactor
	if factor <= 0 {
		factor = 2
	}
	local := o.inflation(o.Model.CPUCompute, o.trueLocalCost)
	remote := o.inflation(o.Model.CPUData, o.trueDataCost)
	return local > remote*factor
}

// ResponseMeta is what rides back on every compute-request response: the
// cost parameters for the key and the row's last-update version.
type ResponseMeta struct {
	Key          string
	ValueSize    int64
	ComputedSize int64
	// ComputeCost is the key's intrinsic UDF time (pure CPU).
	ComputeCost float64
	// EffectiveCost is the UDF time as experienced at the data node,
	// including CPU queueing. Section 3.2 measures costs at runtime; on a
	// loaded node the measured wall time inflates, which is what lets the
	// ski-rental shift work away from overloaded data nodes.
	EffectiveCost float64
	Version       int64
}

// OnComputeResponse folds the piggybacked parameters into the model and
// applies the timestamp rule of Section 4.2.3: if the row version advanced
// between two compute requests, the ski-rental counter is reset so that
// frequently updated items are not bought.
func (o *Optimizer) OnComputeResponse(m ResponseMeta) {
	info := o.keys[m.Key]
	if info == nil {
		o.pruneKeysIfNeeded()
		info = &KeyInfo{}
		o.keys[m.Key] = info
	} else if m.Version > info.Version {
		o.counter.Reset(m.Key)
		o.Cache.Invalidate(m.Key)
		o.stats.CounterReset++
	}
	info.ValueSize = m.ValueSize
	info.ComputedSize = m.ComputedSize
	info.ComputeCost = m.ComputeCost
	info.Version = m.Version

	o.Model.SizeV.Observe(float64(m.ValueSize))
	o.Model.SizeCV.Observe(float64(m.ComputedSize))
	eff := m.EffectiveCost
	if eff <= 0 {
		eff = m.ComputeCost
	}
	o.Model.CPUData.Observe(eff)
	o.trueDataCost.Observe(m.ComputeCost)
}

// OnValueFetched installs a bought value in the cache. toMem reflects the
// route chosen at request time (RouteDataMem vs RouteDataDisk); admission is
// re-checked because the cache may have churned while the fetch was in
// flight, falling back to the disk tier.
func (o *Optimizer) OnValueFetched(key string, size int64, version int64, value interface{}, toMem bool) {
	info := o.keys[key]
	if info == nil {
		o.pruneKeysIfNeeded()
		info = &KeyInfo{ValueSize: size}
		o.keys[key] = info
	}
	info.ValueSize = size
	info.Version = version
	if toMem && o.Cache.CondCacheInMemory(key, size, value, true) {
		return
	}
	o.Cache.AddToDisk(key, size, value)
}

// KnownVersion returns the newest row version the optimizer has learned
// for key (from compute responses, fetches and invalidations), or 0 for an
// unknown key. The live executor uses it to reconcile replicated reads: a
// fetch served by a lagging replica at an older version than one already
// seen must not (re)install in the cache, or a failover read would resurrect
// a value a newer write already invalidated.
func (o *Optimizer) KnownVersion(key string) int64 {
	if info := o.keys[key]; info != nil {
		return info.Version
	}
	return 0
}

// Invalidate handles an update notification from a data node: the cached
// copy is dropped and the counter restarts (Section 4.2.3).
func (o *Optimizer) Invalidate(key string, version int64) {
	o.Cache.Invalidate(key)
	o.counter.Reset(key)
	if info := o.keys[key]; info != nil {
		info.Version = version
	}
	o.stats.CounterReset++
}

// pruneKeysIfNeeded bounds the learned-key map: when it overflows, entries
// for keys with negligible observed frequency are dropped (they will be
// re-learned by a first-contact compute request if seen again).
func (o *Optimizer) pruneKeysIfNeeded() {
	if len(o.keys) < o.maxKeys {
		return
	}
	for k := range o.keys {
		if o.counter.Estimate(k) <= 1 {
			delete(o.keys, k)
		}
	}
}
