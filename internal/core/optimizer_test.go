package core

import (
	"fmt"
	"testing"

	"joinopt/internal/cache"
)

const testBw = 100e6

func newFO(mem int64) *Optimizer {
	return New(Config{
		Policy:        Policy{Caching: true},
		MemCacheBytes: mem,
	})
}

// learn simulates a compute-request response so the optimizer knows the
// key's costs.
func learn(o *Optimizer, key string, size int64, cost float64) {
	o.OnComputeResponse(ResponseMeta{
		Key: key, ValueSize: size, ComputedSize: 100, ComputeCost: cost,
	})
}

func TestFirstContactIsComputeRequest(t *testing.T) {
	o := newFO(1 << 20)
	if got := o.Route("k", testBw); got != RouteCompute {
		t.Fatalf("first route = %v, want compute request", got)
	}
	if o.Stats().FirstContact != 1 {
		t.Fatal("first contact not counted")
	}
}

func TestHotKeyGetsBoughtThenServedFromCache(t *testing.T) {
	o := newFO(1 << 20)
	// Expensive value to ship per-request relative to fetch: data-heavy.
	learn(o, "hot", 50_000, 1e-4)
	var route Route
	bought := false
	for i := 0; i < 100; i++ {
		route = o.Route("hot", testBw)
		switch route {
		case RouteCompute:
			// renting
		case RouteDataMem, RouteDataDisk:
			bought = true
			o.OnValueFetched("hot", 50_000, 0, nil, route == RouteDataMem)
		case RouteLocalMem, RouteLocalDisk:
			if !bought {
				t.Fatal("cache hit before any purchase")
			}
		}
	}
	if !bought {
		t.Fatal("hot key was never bought")
	}
	if route != RouteLocalMem && route != RouteLocalDisk {
		t.Fatalf("steady state route = %v, want cache hit", route)
	}
}

func TestColdKeysKeepRenting(t *testing.T) {
	o := newFO(1 << 20)
	// Each key touched once after learning: never crosses the threshold.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("cold%d", i)
		learn(o, k, 50_000, 1e-4)
		if got := o.Route(k, testBw); got != RouteCompute {
			t.Fatalf("cold key routed %v, want compute request", got)
		}
	}
	if o.Stats().DataReqs != 0 {
		t.Fatal("cold keys triggered purchases")
	}
}

func TestCheapRentNeverBuys(t *testing.T) {
	o := newFO(1 << 20)
	// UDF cost dominates both rent and recurring cost (rent <= recur):
	// buying can never pay off.
	learn(o, "k", 100, 0.5)
	for i := 0; i < 1000; i++ {
		if got := o.Route("k", testBw); got != RouteCompute {
			t.Fatalf("iteration %d routed %v, want compute (rent<=recur)", i, got)
		}
	}
}

func TestOversizedValueGoesToDiskCache(t *testing.T) {
	o := New(Config{Policy: Policy{Caching: true}, MemCacheBytes: 1000})
	learn(o, "big", 100_000, 1e-4) // does not fit mCache
	var route Route
	for i := 0; i < 5000; i++ {
		route = o.Route("big", testBw)
		if route == RouteDataDisk {
			break
		}
		if route == RouteDataMem {
			t.Fatal("oversized item routed to memory cache")
		}
	}
	if route != RouteDataDisk {
		t.Fatalf("oversized hot item never bought to disk (last=%v)", route)
	}
	o.OnValueFetched("big", 100_000, 0, nil, false)
	if got := o.Route("big", testBw); got != RouteLocalDisk {
		t.Fatalf("after disk purchase route = %v, want local-disk", got)
	}
}

func TestPolicyAlwaysFetch(t *testing.T) {
	o := New(Config{Policy: Policy{AlwaysFetch: true}})
	for i := 0; i < 10; i++ {
		if got := o.Route("k", testBw); got != RouteDataNoCache {
			t.Fatalf("FC route = %v, want data-req-nocache", got)
		}
	}
}

func TestPolicyAlwaysCompute(t *testing.T) {
	o := New(Config{Policy: Policy{AlwaysCompute: true}})
	for i := 0; i < 10; i++ {
		if got := o.Route("k", testBw); got != RouteCompute {
			t.Fatalf("FD route = %v, want compute-req", got)
		}
	}
}

func TestPolicyRandomMixes(t *testing.T) {
	o := New(Config{Policy: Policy{RandomChoice: true}, Seed: 42})
	var comp, data int
	for i := 0; i < 1000; i++ {
		switch o.Route("k", testBw) {
		case RouteCompute:
			comp++
		case RouteDataNoCache:
			data++
		default:
			t.Fatal("FR produced unexpected route")
		}
	}
	if comp < 400 || data < 400 {
		t.Fatalf("FR split %d/%d, want roughly even", comp, data)
	}
}

func TestUpdateResetsCounter(t *testing.T) {
	o := newFO(1 << 20)
	learn(o, "k", 50_000, 1e-4)
	// Access until just below the buy threshold.
	for i := 0; i < 3; i++ {
		o.Route("k", testBw)
	}
	before := o.Frequency("k")
	// A compute response with a newer version resets the counter.
	o.OnComputeResponse(ResponseMeta{
		Key: "k", ValueSize: 50_000, ComputedSize: 100,
		ComputeCost: 1e-4, Version: 7,
	})
	if got := o.Frequency("k"); got >= before {
		t.Fatalf("counter not reset on update: %d -> %d", before, got)
	}
	if o.Stats().CounterReset != 1 {
		t.Fatal("reset not counted")
	}
}

func TestInvalidateDropsCacheAndCounter(t *testing.T) {
	o := newFO(1 << 20)
	learn(o, "k", 1000, 1e-4)
	for i := 0; i < 200; i++ {
		if r := o.Route("k", testBw); r == RouteDataMem || r == RouteDataDisk {
			o.OnValueFetched("k", 1000, 0, nil, r == RouteDataMem)
		}
	}
	if _, _, ok := o.Cache.Lookup("k"); !ok {
		t.Fatal("setup failed: key not cached")
	}
	o.Invalidate("k", 9)
	if _, _, ok := o.Cache.Lookup("k"); ok {
		t.Fatal("invalidate left key in cache")
	}
	if o.Frequency("k") != 0 {
		t.Fatal("invalidate did not reset the counter")
	}
}

func TestFreezeStopsBuying(t *testing.T) {
	o := New(Config{
		Policy:        Policy{Caching: true},
		MemCacheBytes: 1 << 20,
		FreezeAfter:   5,
	})
	learn(o, "k", 50_000, 1e-4)
	for i := 0; i < 500; i++ {
		r := o.Route("k", testBw)
		if r == RouteDataMem || r == RouteDataDisk {
			if i >= 5 {
				t.Fatalf("purchase at routed=%d after freeze point", i)
			}
			o.OnValueFetched("k", 50_000, 0, nil, true)
		}
	}
}

func TestFrozenCacheStillServesHits(t *testing.T) {
	o := New(Config{
		Policy:        Policy{Caching: true},
		MemCacheBytes: 1 << 20,
		FreezeAfter:   1000,
	})
	learn(o, "k", 50_000, 1e-4)
	for i := 0; i < 100; i++ {
		if r := o.Route("k", testBw); r == RouteDataMem || r == RouteDataDisk {
			o.OnValueFetched("k", 50_000, 0, nil, true)
		}
	}
	if _, tier, ok := o.Cache.Lookup("k"); !ok || tier != cache.TierMem {
		t.Fatal("setup failed: key not in memory cache")
	}
	// Push past the freeze point.
	for i := 0; i < 2000; i++ {
		o.Route("other", testBw)
	}
	if got := o.Route("k", testBw); got != RouteLocalMem {
		t.Fatalf("frozen cache did not serve hit: %v", got)
	}
}

func TestLearnedInfoExposed(t *testing.T) {
	o := newFO(1 << 20)
	learn(o, "k", 1234, 0.5)
	info := o.Known("k")
	if info == nil || info.ValueSize != 1234 || info.ComputeCost != 0.5 {
		t.Fatalf("Known = %+v", info)
	}
	if o.Known("absent") != nil {
		t.Fatal("unknown key returned info")
	}
}

func TestRouteString(t *testing.T) {
	names := map[Route]string{
		RouteLocalMem: "local-mem", RouteLocalDisk: "local-disk",
		RouteCompute: "compute-req", RouteDataMem: "data-req-mem",
		RouteDataDisk: "data-req-disk", RouteDataNoCache: "data-req-nocache",
		Route(99): "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

// The ratio of purchases to accesses for a hot key must respect the
// ski-rental bound: at most one purchase, after roughly b/(r-br) rents.
func TestSkiRentalAccountingOnHotKey(t *testing.T) {
	o := newFO(1 << 20)
	learn(o, "hot", 50_000, 1e-4)
	purchases := 0
	rentsBefore := 0
	for i := 0; i < 1000; i++ {
		switch r := o.Route("hot", testBw); r {
		case RouteCompute:
			if purchases == 0 {
				rentsBefore++
			}
		case RouteDataMem, RouteDataDisk:
			purchases++
			o.OnValueFetched("hot", 50_000, 0, nil, true)
		}
	}
	if purchases != 1 {
		t.Fatalf("purchases = %d, want exactly 1", purchases)
	}
	if rentsBefore == 0 {
		t.Fatal("bought immediately; ski-rental must rent first")
	}
	if rentsBefore > 200 {
		t.Fatalf("rented %d times before buying; threshold unreasonably high", rentsBefore)
	}
}

func TestOffloadCachedWhenOverloaded(t *testing.T) {
	o := New(Config{
		Policy:                      Policy{Caching: true},
		MemCacheBytes:               1 << 20,
		OffloadCachedWhenOverloaded: true,
		OffloadFactor:               2,
	})
	learn(o, "k", 50_000, 1e-4)
	// Buy and cache the key.
	for i := 0; i < 50; i++ {
		if r := o.Route("k", testBw); r == RouteDataMem || r == RouteDataDisk {
			o.OnValueFetched("k", 50_000, 0, nil, true)
		}
	}
	if got := o.Route("k", testBw); got != RouteLocalMem {
		t.Fatalf("pre-overload route = %v, want local", got)
	}
	// The local CPU becomes badly congested (sojourn 10x intrinsic)
	// while the data node stays uncongested.
	for i := 0; i < 50; i++ {
		o.ObserveLocalCompute(10e-4, 1e-4)
		o.OnComputeResponse(ResponseMeta{Key: "other", ValueSize: 10,
			ComputedSize: 10, ComputeCost: 1e-4, EffectiveCost: 1e-4})
	}
	if got := o.Route("k", testBw); got != RouteCompute {
		t.Fatalf("overloaded route = %v, want compute request (offload)", got)
	}
	if o.Stats().Offloaded == 0 {
		t.Fatal("offload not counted")
	}
}

func TestOffloadDisabledByDefault(t *testing.T) {
	o := newFO(1 << 20)
	learn(o, "k", 50_000, 1e-4)
	for i := 0; i < 50; i++ {
		if r := o.Route("k", testBw); r == RouteDataMem || r == RouteDataDisk {
			o.OnValueFetched("k", 50_000, 0, nil, true)
		}
	}
	for i := 0; i < 50; i++ {
		o.ObserveLocalCompute(100e-4, 1e-4) // extreme local congestion
	}
	// Faithful paper behavior (footnote 4): cached keys stay local.
	if got := o.Route("k", testBw); got != RouteLocalMem {
		t.Fatalf("default route = %v, want local despite congestion", got)
	}
}

func TestConfigShardBudgetSplit(t *testing.T) {
	base := Config{MemCacheBytes: 1 << 20, DiskCacheBytes: 1000, FreezeAfter: 10, Seed: 3}
	if got := base.Shard(0, 1); got != base {
		t.Fatalf("Shard(0,1) changed the config: %+v", got)
	}
	const n = 7
	var mem, disk int64
	seeds := make(map[int64]bool)
	for i := 0; i < n; i++ {
		sc := base.Shard(i, n)
		mem += sc.MemCacheBytes
		disk += sc.DiskCacheBytes
		if sc.FreezeAfter < 1 || sc.FreezeAfter > base.FreezeAfter {
			t.Fatalf("shard %d FreezeAfter = %d", i, sc.FreezeAfter)
		}
		if sc.Policy != base.Policy {
			t.Fatalf("shard %d changed the policy", i)
		}
		seeds[sc.Seed] = true
	}
	if mem != base.MemCacheBytes {
		t.Fatalf("shard mem budgets sum to %d, want %d", mem, base.MemCacheBytes)
	}
	if disk != base.DiskCacheBytes {
		t.Fatalf("shard disk budgets sum to %d, want %d", disk, base.DiskCacheBytes)
	}
	if len(seeds) != n {
		t.Fatalf("shard seeds not decorrelated: %d distinct of %d", len(seeds), n)
	}
	// The unbounded disk cache must stay unbounded on every shard, and the
	// zero (default) mem budget must divide the default, not stay zero.
	sc := (Config{}).Shard(2, 4)
	if sc.DiskCacheBytes != 0 {
		t.Fatalf("unbounded disk cache became bounded: %d", sc.DiskCacheBytes)
	}
	if sc.MemCacheBytes != (100<<20)/4 {
		t.Fatalf("default mem budget shard = %d, want %d", sc.MemCacheBytes, (100<<20)/4)
	}
	// Shard-local optimizers must be constructible even for tiny budgets.
	for i := 0; i < 4; i++ {
		New(Config{MemCacheBytes: 2}.Shard(i, 4))
	}
}
