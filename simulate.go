package joinopt

import (
	"io"

	"joinopt/internal/bench"
	"joinopt/internal/cluster"
	"joinopt/internal/exec"
	"joinopt/internal/store"
	"joinopt/internal/workload"
)

// Strategy names the paper's execution strategies for simulation runs.
type Strategy = exec.Strategy

// The strategies of Section 9.
const (
	StrategyNO = exec.NO // blocking map-side join, no optimizations
	StrategyFC = exec.FC // fetch + compute locally, batched, no caching
	StrategyFD = exec.FD // compute at data nodes
	StrategyFR = exec.FR // random per-tuple choice
	StrategyCO = exec.CO // ski-rental caching only
	StrategyLO = exec.LO // load balancing only
	StrategyFO = exec.FO // the full system
)

// SimReport is the outcome of a simulated run.
type SimReport = exec.Report

// SimConfig describes a custom simulation: a cluster split into compute and
// data nodes, one stored table per join stage, and a tuple source.
type SimConfig struct {
	ComputeNodes int // default 10
	DataNodes    int // default 10
	Strategy     Strategy
	// Tables maps stage order to table definitions.
	Tables []SimTable
	// StageSelectivity[i] is the survival probability after stage i.
	StageSelectivity []float64
	Seed             int64
	// UseGradientDescent selects the paper's gradient-descent balancer
	// instead of the exact piecewise minimizer.
	UseGradientDescent bool
}

// SimTable is one stored relation in a simulation.
type SimTable struct {
	Name string
	// Row returns metadata (value size, UDF cost) for a key.
	Row func(key string) (valueSize, computedSize int64, computeCost float64)
}

// SimTuple is one simulated input tuple.
type SimTuple = workload.Tuple

// Simulate runs tuples through the discrete-event cluster model and reports
// makespan, throughput and routing statistics.
func Simulate(cfg SimConfig, tuples []SimTuple) SimReport {
	if cfg.ComputeNodes == 0 {
		cfg.ComputeNodes = 10
	}
	if cfg.DataNodes == 0 {
		cfg.DataNodes = 10
	}
	hw := cluster.DefaultConfig()
	hw.Nodes = cfg.ComputeNodes + cfg.DataNodes
	c := cluster.New(hw)
	c.AssignRoles(cfg.ComputeNodes, cfg.DataNodes, false)
	st := store.New()
	var names []string
	for _, t := range cfg.Tables {
		row := t.Row
		st.AddTable(store.NewTable(t.Name, store.CatalogFunc(func(key string) store.RowMeta {
			sv, scv, cost := row(key)
			return store.RowMeta{ValueSize: sv, ComputedSize: scv, ComputeCost: cost}
		}), 4, c.DataNodes()))
		names = append(names, t.Name)
	}
	e := exec.New(exec.Config{
		Cluster:            c,
		Store:              st,
		Tables:             names,
		Strategy:           cfg.Strategy,
		StageSelectivity:   cfg.StageSelectivity,
		Seed:               cfg.Seed,
		UseGradientDescent: cfg.UseGradientDescent,
	}, &workload.SliceSource{Tuples: tuples})
	return e.Run()
}

// ExperimentOptions scales the paper-figure reproductions.
type ExperimentOptions = bench.Options

// Experiment runners: each reproduces one figure of the paper's evaluation
// and prints it to w. See EXPERIMENTS.md for the paper-vs-measured record.
func ReproduceFigure(w io.Writer, figure string, o ExperimentOptions) {
	switch figure {
	case "5":
		bench.PrintFig5(w, bench.Fig5(o))
	case "6":
		bench.PrintFig6(w, bench.Fig6(o))
	case "7":
		bench.PrintFig7(w, bench.Fig7(o))
	case "8a":
		bench.PrintSynth(w, bench.Fig8(workload.DataHeavy, o))
	case "8b":
		bench.PrintSynth(w, bench.Fig8(workload.ComputeHeavy, o))
	case "8c":
		bench.PrintSynth(w, bench.Fig8(workload.DataComputeHeavy, o))
	case "9":
		bench.PrintFig9(w, bench.Fig9(o))
	case "11a":
		bench.PrintSynth(w, bench.Fig11(workload.DataHeavy, o))
	case "11b":
		bench.PrintSynth(w, bench.Fig11(workload.ComputeHeavy, o))
	case "11c":
		bench.PrintSynth(w, bench.Fig11(workload.DataComputeHeavy, o))
	default:
		panic("joinopt: unknown figure " + figure)
	}
}

// simulateBlockCache runs FD on the data-heavy workload with an optional
// data-node block cache (the ablation of DESIGN.md).
func simulateBlockCache(tuples []SimTuple, blockCacheBytes int64) SimReport {
	hw := cluster.DefaultConfig()
	c := cluster.New(hw)
	c.AssignRoles(10, 10, false)
	st := store.New()
	syn := workload.NewSynth(workload.DataHeavy, len(tuples), 0, 1)
	st.AddTable(store.NewTable("t", syn.Catalog(), 4, c.DataNodes()))
	e := exec.New(exec.Config{
		Cluster:         c,
		Store:           st,
		Tables:          []string{"t"},
		Strategy:        exec.FD,
		Seed:            1,
		BlockCacheBytes: blockCacheBytes,
	}, &workload.SliceSource{Tuples: tuples})
	return e.Run()
}
