module joinopt

go 1.24
